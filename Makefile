# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench cover report figures examples vet lint

all: build lint test

build:
	go build ./...

vet:
	go vet ./...

# Static analysis: go vet plus the project's determinism and
# simulation-safety analyzers (see docs/LINTING.md).
lint: vet
	go run ./cmd/mrlint ./...

test:
	go test ./...

test-short:
	go test -short ./...

# Run every benchmark (figure-level in the module root plus the
# micro-benchmarks under internal/), archive the results as JSON via
# cmd/benchjson, and refresh the "after" leg of the committed
# before/after record BENCH_PR10.json (its "before" leg pins the
# serial BenchmarkStreamDay against which BenchmarkStreamDayParallel
# runs the same day through the rack-cell parallel-window path;
# BENCH_PR9.json keeps the tuner-backend record, BENCH_PR8.json the
# serving-path one, BENCH_PR7.json the sharded-engine one,
# BENCH_PR3.json the earlier hot-path one). See README.md
# "Machine-readable benchmarks".
BENCH_OUT ?= bench.json
BENCH_ARCHIVE ?= BENCH_PR10.json
bench:
	go test -bench=. -benchmem -benchtime=1x -run='^$$' . ./internal/... \
		| tee /dev/stderr | go run ./cmd/benchjson -o $(BENCH_OUT) \
			-update $(BENCH_ARCHIVE) -leg after

cover:
	go test ./internal/... -coverprofile=cover.out
	go tool cover -func=cover.out | tail -1

# Regenerate every paper artifact as text.
figures:
	go run ./cmd/mrexperiments -run all

# Self-contained HTML report with SVG charts.
report:
	go run ./cmd/mrexperiments -html report.html

examples:
	go run ./examples/quickstart
	go run ./examples/expedited
	go run ./examples/singlerun
	go run ./examples/multitenant
	go run ./examples/whatif
	go run ./examples/hotspot
