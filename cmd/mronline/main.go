// Command mronline runs one benchmark job on the simulated 19-node
// cluster under a chosen tuning strategy and prints a run report.
//
// Usage:
//
//	mronline -bench terasort/100GB -strategy aggressive [-seed 42] [-kb kb.json] [-json]
//
// Strategies:
//
//	default       stock YARN configuration (Table 2 defaults)
//	offline       static config from the offline tuning guide (needs a
//	              profiling run, performed automatically)
//	conservative  MRONLINE fast-single-run tuning (use case 2)
//	aggressive    MRONLINE expedited test run (use case 1): runs the
//	              test run, then re-runs with the best configuration
//	kb            look up the configuration in the knowledge base file
//
// With -kb, aggressive runs store their best configuration for later
// kb-strategy runs. -tuner selects the search backend the aggressive
// test run uses (hill, spsa, or tpe), and -warmstart points at a
// search-state store JSON file: aggressive runs consult it for a warm
// start keyed by (app, input scale) and write their outcome back.
//
// -stream <hours> switches to the continuous-serving workload: hours
// of mixed-job arrivals on the 10,016-node cluster (-strategy default
// or conservative). -parallel N runs it on the rack-cell architecture
// with N parallel-window workers (-lookahead tunes the window width);
// the serial default stays the byte-exact figure reference.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"slices"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/trace"
	"repro/internal/tuner"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "terasort/100GB", "benchmark name (see -list)")
		strategy  = flag.String("strategy", "default", "default|offline|conservative|aggressive|kb")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		kbPath    = flag.String("kb", "", "knowledge base JSON path (read for kb, written by aggressive)")
		asJSON    = flag.Bool("json", false, "emit the report as JSON")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
		traceOut  = flag.String("trace", "", "write the job timeline as JSON Lines to this file")
		gantt     = flag.Bool("gantt", false, "print a per-node occupancy chart after the run")
		specPath  = flag.String("spec", "", "load a custom benchmark from a JSON spec instead of -bench")
		speculate = flag.Bool("speculation", false, "enable speculative execution (straggler mitigation)")
		faultSpec = flag.String("faults", "", "inject faults from this JSON spec (see examples/faults/)")
		compare   = flag.Bool("compare", false, "run default, offline, conservative and aggressive and print a comparison")
		explain   = flag.Bool("explain", false, "print what the tuner learned (conservative/aggressive strategies)")
		counters  = flag.Bool("counters", false, "print the full job counter summary")
		tunerName = flag.String("tuner", "hill", "optimizer backend for aggressive runs: "+strings.Join(tuner.Backends(), "|"))
		warmStart = flag.String("warmstart", "", "warm-start store JSON file (read before aggressive runs, written after)")
		stream    = flag.Float64("stream", 0, "run the continuous-serving stream for this many simulated hours on the 10,016-node cluster instead of a single job")
		parallel  = flag.Int("parallel", 0, "window workers for -stream (rack-cell mode); 0 = serial reference")
		lookahead = flag.Float64("lookahead", 0, "parallel-window width in simulated seconds for -stream -parallel (0 = default 1.0)")
	)
	flag.Parse()

	if !slices.Contains(tuner.Backends(), *tunerName) {
		fmt.Fprintf(os.Stderr, "unknown -tuner backend %q (registered: %s)\n",
			*tunerName, strings.Join(tuner.Backends(), ", "))
		os.Exit(2)
	}

	if *list {
		for _, b := range workload.Suite() {
			fmt.Printf("%-26s input=%8.1fGB shuffle=%8.1fGB maps=%4d reduces=%3d type=%s\n",
				b.Name, b.InputSizeMB/1024, b.ShuffleSizeMB/1024, b.NumMaps, b.NumReduces, b.Type)
		}
		fmt.Println("terasort/<N>GB            synthetic sort of N GB (e.g. terasort/20GB)")
		return
	}

	var b workload.Benchmark
	var err error
	if *specPath != "" {
		b, err = workload.LoadBenchmark(*specPath)
	} else {
		b, err = lookupBenchmark(*benchName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	env := experiments.Env{Seed: *seed, Backend: *tunerName}
	var store *tuner.Store
	if *warmStart != "" {
		if s, err := tuner.LoadStore(*warmStart); err == nil {
			store = s
		} else if errors.Is(err, fs.ErrNotExist) {
			store = tuner.NewStore()
		} else {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		env.WarmStore = store
	}
	saveStore := func() {
		if store == nil {
			return
		}
		if err := store.Save(*warmStart); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *faultSpec != "" {
		fspec, err := faults.Load(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		env.FaultSpec = fspec
	}

	if *stream > 0 {
		runStream(env, *stream, *strategy, *parallel, *lookahead, *asJSON)
		return
	}
	if *parallel > 0 || *lookahead > 0 {
		fmt.Fprintln(os.Stderr, "-parallel/-lookahead require -stream: single-job runs use the"+
			" cluster-wide resource manager, which is not shard-isolated")
		os.Exit(2)
	}

	if *compare {
		compareStrategies(env, b, *kbPath)
		saveStore()
		return
	}
	var rec *trace.Recorder
	if *traceOut != "" || *gantt {
		rec = &trace.Recorder{}
	}
	report := runStrategy(env, b, *strategy, *kbPath, rec, *speculate)
	saveStore()
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *gantt {
		fmt.Print(rec.Gantt(100))
		for _, st := range rec.Stats() {
			fmt.Printf("%s: map phase %.0fs, reduce tail %.0fs", st.Job, st.MapPhaseSecs(), st.ReduceTailSecs())
			if st.OOMs > 0 || st.Kills > 0 {
				fmt.Printf(" (%d OOM, %d killed)", st.OOMs, st.Kills)
			}
			fmt.Println()
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	printReport(report)
	if *counters {
		fmt.Println()
		fmt.Print(report.CountersText)
	}
	if *explain {
		if lastTuner != nil {
			fmt.Println()
			fmt.Print(lastTuner.Explain())
		} else {
			fmt.Fprintln(os.Stderr, "-explain needs -strategy conservative or aggressive")
		}
	}
}

// Report is the CLI's output document.
type Report struct {
	Bench        string             `json:"bench"`
	Strategy     string             `json:"strategy"`
	DurationSecs float64            `json:"duration_secs"`
	TestRunSecs  float64            `json:"test_run_secs,omitempty"`
	Spilled      float64            `json:"spilled_records"`
	Optimal      float64            `json:"optimal_spilled_records"`
	MapMemUtil   float64            `json:"map_mem_util"`
	MapCPUUtil   float64            `json:"map_cpu_util"`
	RedMemUtil   float64            `json:"reduce_mem_util"`
	RedCPUUtil   float64            `json:"reduce_cpu_util"`
	OOMKills     int                `json:"oom_kills"`
	Config       map[string]float64 `json:"config_overrides,omitempty"`
	CountersText string             `json:"-"`
}

// runStream executes the continuous-serving workload (-stream): hours
// of mixed-job arrivals on the 10,016-node cluster, serially or on the
// rack-cell parallel-window path (-parallel N).
func runStream(env experiments.Env, hours float64, strategy string, parallel int, lookahead float64, asJSON bool) {
	if strategy != "default" && strategy != "conservative" {
		fmt.Fprintln(os.Stderr, "-stream supports -strategy default (untuned) or conservative (per-job MRONLINE tuner)")
		os.Exit(2)
	}
	spec := experiments.DefaultStreamSpec(env.Seed)
	spec.HorizonSecs = hours * 3600
	spec.Tuned = strategy == "conservative"
	spec.Parallel = parallel
	spec.Lookahead = lookahead
	spec.Faults = env.FaultSpec
	res := experiments.RunStream(spec)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Jobs       int     `json:"jobs"`
			Completed  int     `json:"completed"`
			Makespan   float64 `json:"makespan_secs"`
			MeanDur    float64 `json:"mean_duration_secs"`
			Events     uint64  `json:"engine_events"`
			SinkEvents int     `json:"sink_events"`
			Parallel   int     `json:"parallel"`
		}{res.Jobs, res.Completed, res.Makespan, res.MeanDur, res.Events, res.SinkEvents, parallel}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if parallel > 0 {
		fmt.Printf("rack-cell mode: %d window workers\n", parallel)
	}
	fmt.Print(res.Report())
}

func reportFrom(b workload.Benchmark, strategy string, res mapreduce.Result, cfg mrconf.Config) Report {
	return Report{
		Bench:        b.Name,
		Strategy:     strategy,
		DurationSecs: res.Duration,
		Spilled:      res.Counters.SpilledRecords(),
		Optimal:      res.Counters.CombineOutputRecs,
		MapMemUtil:   res.MapMemUtil,
		MapCPUUtil:   res.MapCPUUtil,
		RedMemUtil:   res.ReduceMemUtil,
		RedCPUUtil:   res.ReduceCPUUtil,
		OOMKills:     res.Counters.OOMKills,
		Config:       cfg.Overrides(),
		CountersText: res.Counters.Summary(),
	}
}

// lastTuner holds the tuner of the most recent strategy run, for -explain.
var lastTuner *core.Tuner

func runStrategy(env experiments.Env, b workload.Benchmark, strategy, kbPath string, rec *trace.Recorder, speculate bool) Report {
	var spCfg *mapreduce.SpeculationConfig
	if speculate {
		spCfg = mapreduce.DefaultSpeculation()
	}
	runJob := func(cfg mrconf.Config, ctrl mapreduce.Controller) mapreduce.Result {
		return env.RunSpec(mapreduce.Spec{
			Benchmark: b, BaseConfig: cfg, Controller: ctrl, Trace: rec, Speculation: spCfg,
		})
	}
	switch strategy {
	case "default":
		res := runJob(mrconf.Default(), nil)
		return reportFrom(b, strategy, res, mrconf.Default())
	case "offline":
		prof := env.RunOne(b, mrconf.Default(), nil) // profiling run
		cfg := baseline.OfflineGuide(baseline.ProfileFromResult(prof))
		res := runJob(cfg, nil)
		return reportFrom(b, strategy, res, cfg)
	case "conservative":
		tuner := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
			core.TunerOptions{Strategy: core.Conservative, Seed: env.Seed})
		res := runJob(mrconf.Default(), tuner)
		lastTuner = tuner
		return reportFrom(b, strategy, res, tuner.BestConfig())
	case "aggressive":
		tuner, test := env.AggressiveTestRun(b)
		lastTuner = tuner
		best := tuner.BestConfig()
		if kbPath != "" {
			kb := loadOrNewKB(kbPath)
			kb.Put(core.Key(b.Name, b.InputSizeMB, "paper-19node"), best)
			if err := kb.Save(kbPath); err != nil {
				fmt.Fprintln(os.Stderr, "warning:", err)
			}
		}
		res := runJob(best, nil)
		r := reportFrom(b, strategy, res, best)
		r.TestRunSecs = test.Duration
		return r
	case "kb":
		kb := loadOrNewKB(kbPath)
		cfg, ok := kb.Get(core.Key(b.Name, b.InputSizeMB, "paper-19node"))
		if !ok {
			fmt.Fprintf(os.Stderr, "no knowledge base entry for %s in %s (run -strategy aggressive -kb first)\n", b.Name, kbPath)
			os.Exit(1)
		}
		res := runJob(cfg, nil)
		return reportFrom(b, strategy, res, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", strategy)
		os.Exit(2)
		panic("unreachable")
	}
}

func loadOrNewKB(path string) *core.KnowledgeBase {
	if path == "" {
		return core.NewKnowledgeBase()
	}
	if kb, err := core.Load(path); err == nil {
		return kb
	}
	return core.NewKnowledgeBase()
}

func lookupBenchmark(name string) (workload.Benchmark, error) {
	if b, err := workload.ByName(name); err == nil {
		return b, nil
	}
	// terasort/<N>GB shorthand
	if strings.HasPrefix(name, "terasort/") && strings.HasSuffix(name, "GB") {
		var gb int
		if _, err := fmt.Sscanf(name, "terasort/%dGB", &gb); err == nil && gb > 0 {
			return workload.Terasort(gb, 0, 0), nil
		}
	}
	return workload.Benchmark{}, fmt.Errorf("unknown benchmark %q (use -list)", name)
}

func printReport(r Report) {
	fmt.Printf("benchmark:   %s\n", r.Bench)
	fmt.Printf("strategy:    %s\n", r.Strategy)
	if r.TestRunSecs > 0 {
		fmt.Printf("test run:    %.0f s (aggressive tuning trial)\n", r.TestRunSecs)
	}
	fmt.Printf("job time:    %.0f s\n", r.DurationSecs)
	if r.Optimal > 0 {
		fmt.Printf("spills:      %.3g records (%.2fx optimal)\n", r.Spilled, r.Spilled/r.Optimal)
	}
	fmt.Printf("mem util:    map %.0f%%  reduce %.0f%%\n", r.MapMemUtil*100, r.RedMemUtil*100)
	fmt.Printf("cpu util:    map %.0f%%  reduce %.0f%%\n", r.MapCPUUtil*100, r.RedCPUUtil*100)
	if r.OOMKills > 0 {
		fmt.Printf("oom kills:   %d\n", r.OOMKills)
	}
	if len(r.Config) > 0 {
		fmt.Println("configuration overrides:")
		for _, k := range sortedKeys(r.Config) {
			fmt.Printf("  %-52s %g\n", k, r.Config[k])
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// compareStrategies runs every strategy on the benchmark and prints a
// side-by-side summary.
func compareStrategies(env experiments.Env, b workload.Benchmark, kbPath string) {
	fmt.Printf("%-14s %9s %10s %12s %10s\n", "strategy", "job time", "vs default", "spills/opt", "test run")
	var defDur float64
	for _, strat := range []string{"default", "offline", "conservative", "aggressive"} {
		r := runStrategy(env, b, strat, kbPath, nil, false)
		if strat == "default" {
			defDur = r.DurationSecs
		}
		imp := ""
		if strat != "default" && defDur > 0 {
			imp = fmt.Sprintf("%+.0f%%", -100*(r.DurationSecs-defDur)/defDur)
		}
		ratio := ""
		if r.Optimal > 0 {
			ratio = fmt.Sprintf("%.2fx", r.Spilled/r.Optimal)
		}
		test := ""
		if r.TestRunSecs > 0 {
			test = fmt.Sprintf("%.0fs", r.TestRunSecs)
		}
		fmt.Printf("%-14s %8.0fs %10s %12s %10s\n", strat, r.DurationSecs, imp, ratio, test)
	}
}
