// Command mrlint runs the project's determinism and simulation-safety
// static analyzers (internal/lint) over the whole module and reports
// violations as file:line:col: [rule] message.
//
// Usage:
//
//	go run ./cmd/mrlint ./...
//	go run ./cmd/mrlint -rules no-wallclock,ordered-map-iter ./...
//	go run ./cmd/mrlint -json ./... > findings.json
//	go run ./cmd/mrlint -explain ./...        # full source→sink paths
//	go run ./cmd/mrlint -suppressions ./...   # audit //mrlint:ignore directives
//	go run ./cmd/mrlint -C internal/lint/testdata/badmod ./...
//
// The package patterns are accepted for familiarity but mrlint always
// analyzes the entire module containing the working directory (or the
// -C directory): determinism invariants are module-wide properties.
//
// -explain prints, under each interprocedural finding (nondet-flow),
// the complete source→call-chain→sink path, one hop per line, like a
// stack trace. With -json the same path is carried structurally in
// each finding's "path" field.
//
// -suppressions lists every //mrlint:ignore directive in the module
// with its file:line, rules, and reason. Combined with -json the
// output becomes an object {"findings": [...], "suppressions": [...]}
// instead of the bare findings array.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on load
// or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut      = flag.Bool("json", false, "emit findings as JSON")
		rules        = flag.String("rules", "", "comma-separated rules to run (default: all)")
		chdir        = flag.String("C", ".", "directory whose module to analyze")
		list         = flag.Bool("list", false, "list available rules and exit")
		explain      = flag.Bool("explain", false, "print the full source→sink path under interprocedural findings")
		suppressions = flag.Bool("suppressions", false, "list every //mrlint:ignore directive (file:line, rules, reason)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.Select(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrlint:", err)
		return 2
	}

	root, err := lint.FindModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrlint:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrlint:", err)
		return 2
	}

	findings := mod.Run(analyzers)
	if findings == nil {
		findings = []lint.Finding{}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var payload any = findings
		if *suppressions {
			payload = struct {
				Findings     []lint.Finding   `json:"findings"`
				Suppressions []lint.Directive `json:"suppressions"`
			}{findings, mod.Suppressions()}
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(os.Stderr, "mrlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if *explain && len(f.Path) > 0 {
				fmt.Println(f.Explain())
			} else {
				fmt.Println(f)
			}
		}
		if *suppressions {
			printSuppressions(mod.Suppressions())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "mrlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

func printSuppressions(dirs []lint.Directive) {
	if len(dirs) == 0 {
		fmt.Println("no //mrlint:ignore directives in the module")
		return
	}
	fmt.Printf("%d active //mrlint:ignore directive(s):\n", len(dirs))
	for _, d := range dirs {
		status := ""
		if d.Problem != "" {
			status = " [MALFORMED: " + d.Problem + "]"
		}
		reason := d.Reason
		if reason == "" {
			reason = "(no reason)"
		}
		fmt.Printf("  %s:%d: %s — %s%s\n", d.File, d.Line, strings.Join(d.Rules, ","), reason, status)
	}
}
