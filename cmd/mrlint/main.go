// Command mrlint runs the project's determinism and simulation-safety
// static analyzers (internal/lint) over the whole module and reports
// violations as file:line:col: [rule] message.
//
// Usage:
//
//	go run ./cmd/mrlint ./...
//	go run ./cmd/mrlint -rules no-wallclock,ordered-map-iter ./...
//	go run ./cmd/mrlint -json ./... > findings.json
//	go run ./cmd/mrlint -C internal/lint/testdata/badmod ./...
//
// The package patterns are accepted for familiarity but mrlint always
// analyzes the entire module containing the working directory (or the
// -C directory): determinism invariants are module-wide properties.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on load
// or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		rules   = flag.String("rules", "", "comma-separated rules to run (default: all)")
		chdir   = flag.String("C", ".", "directory whose module to analyze")
		list    = flag.Bool("list", false, "list available rules and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.Select(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrlint:", err)
		return 2
	}

	root, err := lint.FindModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrlint:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrlint:", err)
		return 2
	}

	findings := mod.Run(analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "mrlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "mrlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
