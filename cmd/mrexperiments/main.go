// Command mrexperiments regenerates the tables and figures of the
// MRONLINE paper (HPDC'14) on the simulated 19-node cluster.
//
// Usage:
//
//	mrexperiments -run all
//	mrexperiments -run fig4,fig13 -seed 7
//
// Artifacts: table2 table3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// fig12 fig13 fig14 fig15 fig16 testruns hotspot straggler
// amortization stream faults tournament
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mrconf"
	"repro/internal/trace"
	"repro/internal/tuner"
	"repro/internal/workload"
)

func main() {
	var (
		run        = flag.String("run", "all", "comma-separated artifact ids, or 'all'")
		seed       = flag.Uint64("seed", 42, "simulation seed")
		htmlPath   = flag.String("html", "", "write a self-contained HTML report (runs everything)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		faultSpec  = flag.String("faults", "", "inject faults from this JSON spec into every run (see examples/faults/)")
		tunerName  = flag.String("tuner", "hill", "optimizer backend for aggressive tuning runs: "+strings.Join(tuner.Backends(), "|"))
		warmStart  = flag.String("warmstart", "", "warm-start store JSON file: load search state per job class before running, save after")
		parallel   = flag.Int("parallel", 0, "window workers for the continuous-serving legs (rack-cell mode); 0 = serial reference")
		lookahead  = flag.Float64("lookahead", 0, "parallel-window width in simulated seconds (0 = default 1.0)")
	)
	flag.Parse()

	if err := validBackend(*tunerName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	env := experiments.Env{Seed: *seed, Backend: *tunerName, Parallel: *parallel, Lookahead: *lookahead}
	var store *tuner.Store
	if *warmStart != "" {
		if s, err := tuner.LoadStore(*warmStart); err == nil {
			store = s
		} else if errors.Is(err, fs.ErrNotExist) {
			store = tuner.NewStore()
		} else {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		env.WarmStore = store
	}
	saveStore := func() {
		if store == nil {
			return
		}
		if err := store.Save(*warmStart); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *faultSpec != "" {
		fspec, err := faults.Load(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		env.FaultSpec = fspec
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := env.BuildReport().RenderHTML(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *htmlPath)
		saveStore()
		return
	}
	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = []string{"table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
			"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "testruns",
			"hotspot", "straggler", "amortization", "stream", "faults", "tournament"}
	}

	// Expedited results back Figs 4-9; compute each set once.
	var exp4, exp5, exp6 []experiments.ExpeditedRow
	need := func(id string) bool {
		for _, want := range ids {
			if want == id {
				return true
			}
		}
		return false
	}
	if need("fig4") || need("fig7") {
		exp4 = env.Fig4()
	}
	if need("fig5") || need("fig8") {
		exp5 = env.Fig5()
	}
	if need("fig6") || need("fig9") {
		exp6 = env.Fig6()
	}
	var mt *experiments.MultiTenantResult
	if need("fig14") || need("fig15") || need("fig16") {
		m := env.MultiTenant()
		mt = &m
	}

	for _, id := range ids {
		switch id {
		case "table2":
			table2()
		case "table3":
			table3(env)
		case "fig4":
			expedited("Figure 4: Terasort, expedited test runs use case", exp4)
		case "fig5":
			expedited("Figure 5: Wikipedia apps, expedited test runs use case", exp5)
		case "fig6":
			expedited("Figure 6: Freebase apps, expedited test runs use case", exp6)
		case "fig7":
			spills("Figure 7: Terasort spilled records", exp4)
		case "fig8":
			spills("Figure 8: Wikipedia apps spilled records", exp5)
		case "fig9":
			spills("Figure 9: Freebase apps spilled records", exp6)
		case "fig10":
			singleRun("Figure 10: Terasort, fast single run use case", env.Fig10())
		case "fig11":
			singleRun("Figure 11: Wikipedia apps, fast single run use case", env.Fig11())
		case "fig12":
			singleRun("Figure 12: Freebase apps, fast single run use case", env.Fig12())
		case "fig13":
			jobSize(env.Fig13())
		case "fig14":
			fig14(mt)
		case "fig15":
			fig15(mt)
		case "fig16":
			fig16(mt)
		case "testruns":
			testRuns(env)
		case "hotspot":
			hotspot(env)
		case "straggler":
			straggler(env)
		case "amortization":
			amortization(env)
		case "stream":
			stream(env)
		case "faults":
			faultRecovery(env)
		case "tournament":
			tournament(env)
		default:
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", id)
			os.Exit(2)
		}
	}
	saveStore()
}

// validBackend fails fast on an unknown -tuner value, listing what is
// actually registered.
func validBackend(name string) error {
	for _, b := range tuner.Backends() {
		if b == name {
			return nil
		}
	}
	return fmt.Errorf("unknown -tuner backend %q (registered: %s)",
		name, strings.Join(tuner.Backends(), ", "))
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

func table2() {
	header("Table 2: key configuration parameters and defaults")
	fmt.Printf("%-52s %10s %8s %8s %12s %s\n", "parameter", "default", "min", "max", "category", "scope")
	for _, p := range mrconf.Params() {
		fmt.Printf("%-52s %10g %8g %8g %12s %s\n", p.Name, p.Default, p.Min, p.Max, p.Category, p.Scope)
	}
}

func table3(env experiments.Env) {
	header("Table 3: benchmark characteristics (table vs measured)")
	fmt.Printf("%-26s %9s %9s %9s | %9s %9s %5s %4s %s\n",
		"benchmark", "input", "shuffle", "output", "meas shfl", "meas out", "maps", "red", "type")
	for _, r := range env.Table3() {
		fmt.Printf("%-26s %8.1fG %8.1fG %8.1fG | %8.1fG %8.1fG %5d %4d %s\n",
			r.Bench, r.InputMB/1024, r.ShuffleMB/1024, r.OutputMB/1024,
			r.MeasShuffleMB/1024, r.MeasOutputMB/1024, r.Maps, r.Reduces, r.JobType)
	}
}

func expedited(title string, rows []experiments.ExpeditedRow) {
	header(title)
	fmt.Printf("%-26s %9s %9s %9s %9s %12s\n", "benchmark", "default", "offline", "MRONLINE", "test run", "improvement")
	for _, r := range rows {
		fmt.Printf("%-26s %8.0fs %8.0fs %8.0fs %8.0fs %11.0f%%\n",
			r.Bench, r.DefaultDur, r.OfflineDur, r.MronlineDur, r.TestRunDur, 100*r.Improvement())
	}
}

func spills(title string, rows []experiments.ExpeditedRow) {
	header(title)
	fmt.Printf("%-26s %10s %10s %10s %10s\n", "benchmark", "optimal", "default", "offline", "MRONLINE")
	for _, r := range rows {
		fmt.Printf("%-26s %10.2e %10.2e %10.2e %10.2e\n",
			r.Bench, r.OptimalSpills, r.DefaultSpills, r.OfflineSpills, r.MronlineSpills)
	}
}

func singleRun(title string, rows []experiments.SingleRunRow) {
	header(title)
	fmt.Printf("%-26s %9s %9s %12s\n", "benchmark", "default", "MRONLINE", "improvement")
	for _, r := range rows {
		fmt.Printf("%-26s %8.0fs %8.0fs %11.0f%%\n", r.Bench, r.DefaultDur, r.MronlineDur, 100*r.Improvement())
	}
}

func jobSize(rows []experiments.JobSizeRow) {
	header("Figure 13: Terasort job-size study")
	fmt.Printf("%6s %5s %5s %9s %9s %12s\n", "size", "maps", "red", "default", "MRONLINE", "improvement")
	for _, r := range rows {
		fmt.Printf("%4dGB %5d %5d %8.0fs %8.0fs %11.0f%%\n",
			r.SizeGB, r.Maps, r.Reduces, r.DefaultDur, r.MronlineDur, 100*r.Improvement())
	}
}

func fig14(mt *experiments.MultiTenantResult) {
	header("Figure 14: multi-tenant job execution time (Terasort 60GB + BBP, fair share)")
	fmt.Printf("%-10s %9s %9s %12s\n", "app", "default", "MRONLINE", "improvement")
	fmt.Printf("%-10s %8.0fs %8.0fs %11.0f%%\n", "Terasort",
		mt.Default.Terasort.Duration, mt.Mronline.Terasort.Duration,
		100*(mt.Default.Terasort.Duration-mt.Mronline.Terasort.Duration)/mt.Default.Terasort.Duration)
	fmt.Printf("%-10s %8.0fs %8.0fs %11.0f%%\n", "BBP",
		mt.Default.BBP.Duration, mt.Mronline.BBP.Duration,
		100*(mt.Default.BBP.Duration-mt.Mronline.BBP.Duration)/mt.Default.BBP.Duration)
	fmt.Printf("Terasort spilled records: %.2e -> %.2e\n",
		mt.Default.Terasort.Counters.SpilledRecords(), mt.Mronline.Terasort.Counters.SpilledRecords())
}

func fig15(mt *experiments.MultiTenantResult) {
	header("Figure 15: multi-tenant memory utilization")
	utilRows(mt, func(r experiments.MultiTenantRun) [4]float64 {
		return [4]float64{r.Terasort.MapMemUtil, r.Terasort.ReduceMemUtil, r.BBP.MapMemUtil, r.BBP.ReduceMemUtil}
	})
}

func fig16(mt *experiments.MultiTenantResult) {
	header("Figure 16: multi-tenant CPU utilization")
	utilRows(mt, func(r experiments.MultiTenantRun) [4]float64 {
		return [4]float64{r.Terasort.MapCPUUtil, r.Terasort.ReduceCPUUtil, r.BBP.MapCPUUtil, r.BBP.ReduceCPUUtil}
	})
}

func utilRows(mt *experiments.MultiTenantResult, pick func(experiments.MultiTenantRun) [4]float64) {
	labels := [4]string{"Terasort-m", "Terasort-r", "BBP-m", "BBP-r"}
	def := pick(mt.Default)
	mro := pick(mt.Mronline)
	fmt.Printf("%-12s %9s %9s\n", "container", "default", "MRONLINE")
	for i, l := range labels {
		fmt.Printf("%-12s %8.0f%% %8.0f%%\n", l, def[i]*100, mro[i]*100)
	}
}

func hotspot(env experiments.Env) {
	header("Extension: hot-spot avoidance (4 interfered nodes, Terasort 20GB)")
	r := env.HotSpotStudy(4)
	fmt.Printf("%-22s %9s\n", "placement", "job time")
	fmt.Printf("%-22s %8.0fs\n", "clean cluster", r.CleanDur)
	fmt.Printf("%-22s %8.0fs\n", "hot, blind", r.DefaultDur)
	fmt.Printf("%-22s %8.0fs (%.0f%% vs blind)\n", "hot, avoiding", r.AvoidDur, 100*r.Improvement())
}

func straggler(env experiments.Env) {
	header("Extension: straggler mitigation (interference arrives mid-job)")
	r := env.StragglerStudy(3)
	fmt.Printf("%-22s %9s\n", "mitigation", "job time")
	fmt.Printf("%-22s %8.0fs\n", "none", r.NoneDur)
	fmt.Printf("%-22s %8.0fs (%d launched, %d won)\n", "speculation", r.SpeculationDur, r.SpecLaunches, r.SpecWins)
	fmt.Printf("%-22s %8.0fs\n", "hot-spot avoidance", r.AvoidanceDur)
	fmt.Printf("%-22s %8.0fs\n", "both", r.BothDur)
}

func amortization(env experiments.Env) {
	header("Extension: knowledge-base amortization (Terasort 60GB, 8 runs)")
	rows := env.Amortization(workload.Terasort(60, 0, 0), 8)
	fmt.Printf("%5s %12s %12s %14s\n", "runs", "default", "MRONLINE+KB", "conservative")
	for _, r := range rows {
		fmt.Printf("%5d %11.0fs %11.0fs %13.0fs\n",
			r.Runs, r.CumulativeDefault, r.CumulativeMronline, r.CumulativeConserv)
	}
}

func stream(env experiments.Env) {
	header("Extension: multi-job arrival stream (9 mixed jobs, fair share)")
	r := env.JobStream(9, 30)
	fmt.Printf("mean completion: default %.0fs -> MRONLINE %.0fs (%.0f%%)\n",
		r.MeanDefault, r.MeanMronline, 100*r.Improvement())
	fmt.Printf("makespan:        default %.0fs -> MRONLINE %.0fs\n",
		r.MakespanDefault, r.MakespanMron)

	header("Extension: continuous serving (1h stream, 10,016 nodes, fair share)")
	spec := experiments.DefaultStreamSpec(env.Seed)
	spec.HorizonSecs = 3600
	spec.Parallel = env.Parallel
	spec.Lookahead = env.Lookahead
	if env.Parallel > 0 {
		spec.Faults = env.FaultSpec
		fmt.Printf("rack-cell mode: %d window workers\n", env.Parallel)
	}
	fmt.Printf("%-10s %6s %10s %9s %9s %9s\n",
		"leg", "jobs", "makespan", "mean", "p99~", "max")
	var defStats *trace.StatsSink
	for _, leg := range []struct {
		name  string
		tuned bool
	}{{"default", false}, {"MRONLINE", true}} {
		spec.Tuned = leg.tuned
		res := experiments.RunStream(spec)
		all := res.Stats.Overall()
		fmt.Printf("%-10s %6d %9.0fs %8.1fs %8.1fs %8.1fs\n",
			leg.name, res.Jobs, res.Makespan, all.MeanDuration(),
			all.ApproxPercentile(99), all.DurMax)
		if !leg.tuned {
			defStats = res.Stats
		}
	}
	fmt.Println("\nper-class latency (default leg):")
	defStats.WriteSummary(os.Stdout)
}

func faultRecovery(env experiments.Env) {
	header("Extension: failure recovery under tuning (Terasort 20GB, mid-job node crash)")
	rows := env.FaultRecovery()
	fmt.Printf("%-18s %9s %7s %8s %8s %8s %8s\n",
		"leg", "job time", "failed", "killed", "reexec", "lost", "rerepl")
	for _, r := range rows {
		fmt.Printf("%-18s %8.0fs %7v %8d %8d %8d %8d\n",
			r.Leg, r.Duration, r.Failed, r.NodeLossKills, r.MapsReExecuted,
			r.Faults.ContainersLost, r.Faults.BlocksReReplicated)
	}
}

func tournament(env experiments.Env) {
	header("Extension: optimizer backend tournament (Table 3 apps x " +
		strings.Join(tuner.Backends(), "/") + ", crash churn, warm restart)")
	rows := env.Tournament(experiments.DefaultTournamentSpec())
	fmt.Printf("%-26s %-7s %6s %6s %9s %9s %9s %8s | %9s %9s %6s | %5s %5s %9s\n",
		"benchmark", "backend", "evals", "waves", "test run", "tuned", "cost", "to15%",
		"churn tst", "churn tun", "failed", "coldW", "warmW", "warm tst")
	for _, r := range rows {
		fmt.Printf("%-26s %-7s %6d %6d %8.0fs %8.0fs %9.3f %8d | %8.0fs %8.0fs %6v | %5d %5d %8.0fs\n",
			r.Bench, r.Backend, r.Evals, r.Waves, r.TestRunDur, r.TunedDur, r.FinalCost,
			r.TestsTo15, r.ChurnTestDur, r.ChurnTunedDur, r.ChurnFailed,
			r.ColdWaves, r.WarmWaves, r.WarmDur)
	}
}

func testRuns(env experiments.Env) {
	header("Test-run count to a tuned configuration (paper §7)")
	rows := env.TestRunCounts(workload.Terasort(20, 0, 0), 4)
	fmt.Printf("%-24s %6s %10s\n", "approach", "runs", "job time")
	for _, r := range rows {
		fmt.Printf("%-24s %6d %9.0fs\n", r.Approach, r.Runs, r.BestDur)
	}
}
