// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so benchmark results can be archived,
// diffed, and compared across commits without scraping text.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson -o bench.json
//
// The output format is documented in README.md ("Machine-readable
// benchmarks"). Each benchmark line
//
//	BenchmarkFabricChurn-8  165118  6959 ns/op  2 B/op  0 allocs/op
//
// becomes one entry keyed by the benchmark name with the -N GOMAXPROCS
// suffix stripped. Standard units (ns/op, B/op, allocs/op, MB/s) map to
// fixed fields; any other `value unit` pair — custom metrics emitted
// via b.ReportMetric — lands in the "metrics" map under its unit name.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        []string `json:"packages,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	update := flag.String("update", "", "also replace one leg of this before/after archive in place (see BENCH_PR3.json)")
	leg := flag.String("leg", "after", "which leg of the -update archive to replace")
	flag.Parse()

	doc := document{Benchmarks: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = append(doc.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo \t--- FAIL" lines
		}
		r := result{Name: stripProcSuffix(fields[0]), Iterations: iters}
		// Remaining fields come in `value unit` pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				r.MBPerSec = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *update != "" {
		if err := updateArchive(*update, *leg, doc.Benchmarks); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: replaced %q leg of %s (%d benchmarks)\n", *leg, *update, len(doc.Benchmarks))
	}
	if *out == "" {
		if *update == "" {
			os.Stdout.Write(buf)
		}
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// updateArchive rewrites one leg of a before/after archive file (the
// BENCH_PR*.json convention: a top-level object with "before" and
// "after" legs each holding a "benchmarks" array), preserving every
// other field — title, note, the opposite leg. A missing file starts
// a fresh archive.
func updateArchive(path, leg string, benches []result) error {
	archive := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &archive); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	legObj, _ := archive[leg].(map[string]any)
	if legObj == nil {
		legObj = map[string]any{}
	}
	legObj["benchmarks"] = benches
	archive[leg] = legObj
	buf, err := json.MarshalIndent(archive, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// stripProcSuffix removes the trailing -N GOMAXPROCS suffix go test
// appends to benchmark names (BenchmarkFoo-8 -> BenchmarkFoo).
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
