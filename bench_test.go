// Package repro's root benchmark suite regenerates every table and
// figure of the MRONLINE paper (HPDC'14) as a testing.B benchmark,
// reporting the paper's metrics via b.ReportMetric:
//
//	go test -bench=. -benchmem
//
// Conventions: *_s metrics are simulated job-execution seconds,
// imp_pct is MRONLINE's improvement over the default configuration in
// percent, spill ratios are relative to the optimal (combiner output)
// record count. One iteration = one full regeneration of the artifact.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mrconf"
	"repro/internal/tuner"
	"repro/internal/workload"
)

func env() experiments.Env { return experiments.DefaultEnv() }

// BenchmarkTable2Parameters walks the Table 2 registry (sanity-scale
// benchmark: configuration handling must stay cheap since every task
// materializes configs).
func BenchmarkTable2Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := mrconf.Default()
		for _, p := range mrconf.Params() {
			cfg = cfg.With(p.Name, p.Default)
			_ = cfg.Get(p.Name)
		}
		if err := mrconf.Validate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Characteristics regenerates the Table 3 data volumes
// by running the full suite under the default configuration.
func BenchmarkTable3Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := env().Table3()
		if len(rows) != 10 {
			b.Fatalf("suite rows = %d", len(rows))
		}
		b.ReportMetric(rows[8].MeasShuffleMB/1024, "terasort_shuffle_GB")
	}
}

func reportExpedited(b *testing.B, rows []experiments.ExpeditedRow) {
	b.Helper()
	var impSum float64
	for _, r := range rows {
		impSum += r.Improvement()
	}
	b.ReportMetric(rows[0].DefaultDur, "default_s")
	b.ReportMetric(rows[0].MronlineDur, "mronline_s")
	b.ReportMetric(100*impSum/float64(len(rows)), "imp_pct")
}

// BenchmarkFig4ExpeditedTerasort: Terasort 100 GB, default vs offline
// guide vs MRONLINE (expedited test runs use case).
func BenchmarkFig4ExpeditedTerasort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportExpedited(b, env().Fig4())
	}
}

// BenchmarkFig5ExpeditedWikipedia: the four Wikipedia applications.
func BenchmarkFig5ExpeditedWikipedia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportExpedited(b, env().Fig5())
	}
}

// BenchmarkFig6ExpeditedFreebase: the four Freebase applications.
func BenchmarkFig6ExpeditedFreebase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportExpedited(b, env().Fig6())
	}
}

func reportSpills(b *testing.B, rows []experiments.ExpeditedRow) {
	b.Helper()
	var defR, mroR float64
	for _, r := range rows {
		defR += r.DefaultSpills / r.OptimalSpills
		mroR += r.MronlineSpills / r.OptimalSpills
	}
	n := float64(len(rows))
	b.ReportMetric(defR/n, "default_vs_optimal")
	b.ReportMetric(mroR/n, "mronline_vs_optimal")
}

// BenchmarkFig7SpillTerasort: spilled records, Terasort.
func BenchmarkFig7SpillTerasort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSpills(b, env().Fig4())
	}
}

// BenchmarkFig8SpillWikipedia: spilled records, Wikipedia apps.
func BenchmarkFig8SpillWikipedia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSpills(b, env().Fig5())
	}
}

// BenchmarkFig9SpillFreebase: spilled records, Freebase apps.
func BenchmarkFig9SpillFreebase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSpills(b, env().Fig6())
	}
}

func reportSingleRun(b *testing.B, rows []experiments.SingleRunRow) {
	b.Helper()
	var impSum float64
	for _, r := range rows {
		impSum += r.Improvement()
	}
	b.ReportMetric(rows[0].DefaultDur, "default_s")
	b.ReportMetric(rows[0].MronlineDur, "mronline_s")
	b.ReportMetric(100*impSum/float64(len(rows)), "imp_pct")
}

// BenchmarkFig10SingleRunTerasort: fast single run, Terasort.
func BenchmarkFig10SingleRunTerasort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSingleRun(b, env().Fig10())
	}
}

// BenchmarkFig11SingleRunWikipedia: fast single run, Wikipedia apps.
func BenchmarkFig11SingleRunWikipedia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSingleRun(b, env().Fig11())
	}
}

// BenchmarkFig12SingleRunFreebase: fast single run, Freebase apps.
func BenchmarkFig12SingleRunFreebase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSingleRun(b, env().Fig12())
	}
}

// BenchmarkFig13JobSize: the Terasort 2-100 GB sweep.
func BenchmarkFig13JobSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := env().Fig13()
		b.ReportMetric(100*rows[0].Improvement(), "imp2GB_pct")
		b.ReportMetric(100*rows[3].Improvement(), "imp20GB_pct")
		b.ReportMetric(100*rows[5].Improvement(), "imp100GB_pct")
	}
}

// BenchmarkFig14MultiTenant: Terasort + BBP execution times under
// fair-share co-location.
func BenchmarkFig14MultiTenant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mt := env().MultiTenant()
		tsImp := (mt.Default.Terasort.Duration - mt.Mronline.Terasort.Duration) / mt.Default.Terasort.Duration
		bbpImp := (mt.Default.BBP.Duration - mt.Mronline.BBP.Duration) / mt.Default.BBP.Duration
		b.ReportMetric(100*tsImp, "terasort_imp_pct")
		b.ReportMetric(100*bbpImp, "bbp_imp_pct")
	}
}

// BenchmarkFig15MemoryUtilization: multi-tenant memory utilization.
func BenchmarkFig15MemoryUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mt := env().MultiTenant()
		b.ReportMetric(100*mt.Default.Terasort.MapMemUtil, "default_tsmap_pct")
		b.ReportMetric(100*mt.Mronline.Terasort.MapMemUtil, "mronline_tsmap_pct")
		b.ReportMetric(100*mt.Mronline.BBP.MapMemUtil, "mronline_bbpmap_pct")
	}
}

// BenchmarkFig16CPUUtilization: multi-tenant CPU utilization.
func BenchmarkFig16CPUUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mt := env().MultiTenant()
		b.ReportMetric(100*mt.Default.BBP.MapCPUUtil, "default_bbpmap_pct")
		b.ReportMetric(100*mt.Mronline.BBP.MapCPUUtil, "mronline_bbpmap_pct")
	}
}

// BenchmarkTestRunCount: MRONLINE's single test run vs the
// Gunther-style GA's dozens (paper §7).
func BenchmarkTestRunCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := env().TestRunCounts(workload.Terasort(20, 0, 0), 4)
		b.ReportMetric(float64(rows[0].Runs), "mronline_runs")
		b.ReportMetric(float64(rows[1].Runs), "ga_runs")
	}
}

// --- ablation benches: the design choices DESIGN.md calls out ---

// BenchmarkAblationGrayBoxVsBlackBox compares the full gray-box tuner
// (rules + bound tightening, 4-5 search dims per scope) against pure
// black-box smart hill climbing over all 13 parameters, measured by
// the quality of the configuration each finds in one test run.
func BenchmarkAblationGrayBoxVsBlackBox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := env()
		bench := workload.Terasort(100, 752, 200)

		grayTuner, _ := e.AggressiveTestRun(bench)
		gray := e.RunOne(bench, grayTuner.BestConfig(), nil).Duration

		blackTuner := core.NewTuner(bench.Name, bench.NumMaps, bench.NumReduces, mrconf.Default(),
			core.TunerOptions{Strategy: core.Aggressive, Seed: e.Seed, BlackBox: true})
		e.RunOne(bench, mrconf.Default(), blackTuner)
		black := e.RunOne(bench, blackTuner.BestConfig(), nil).Duration

		b.ReportMetric(gray, "graybox_tuned_s")
		b.ReportMetric(black, "blackbox_tuned_s")
	}
}

// BenchmarkAblationConservativeWaveSize measures sensitivity of the
// fast-single-run gains to how quickly the rules react (the
// conservative recompute cadence is fixed; this tracks the achieved
// improvement so regressions in rule quality show up).
func BenchmarkAblationConservativeRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := env().SingleRun(workload.Terasort(60, 0, 0))
		b.ReportMetric(100*row.Improvement(), "imp_pct")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: one full
// default Terasort 100 GB job (752 maps, 200 reduces, ~9k events).
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench := workload.Terasort(100, 752, 200)
	for i := 0; i < b.N; i++ {
		res := env().RunOne(bench, mrconf.Default(), nil)
		if res.Failed {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkHotSpotAvoidance: job time on a cluster with 4 interfered
// nodes, blind vs utilization-aware placement (extension of the §1
// hot-spot claim).
func BenchmarkHotSpotAvoidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := env().HotSpotStudy(4)
		b.ReportMetric(r.DefaultDur, "blind_s")
		b.ReportMetric(r.AvoidDur, "avoiding_s")
		b.ReportMetric(r.CleanDur, "clean_s")
	}
}

// BenchmarkStragglerMitigation: mid-job hot spots handled by nothing,
// speculative execution, hot-spot avoidance, or both.
func BenchmarkStragglerMitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := env().StragglerStudy(3)
		b.ReportMetric(r.NoneDur, "none_s")
		b.ReportMetric(r.SpeculationDur, "speculation_s")
		b.ReportMetric(r.AvoidanceDur, "avoidance_s")
		b.ReportMetric(r.BothDur, "both_s")
	}
}

// BenchmarkAmortization: cumulative time over 8 repeat runs under the
// three policies (never tune / test run + knowledge base /
// conservative every run).
func BenchmarkAmortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := env().Amortization(workload.Terasort(60, 0, 0), 8)
		last := rows[len(rows)-1]
		b.ReportMetric(last.CumulativeDefault, "default8_s")
		b.ReportMetric(last.CumulativeMronline, "kb8_s")
		b.ReportMetric(last.CumulativeConserv, "conservative8_s")
	}
}

// BenchmarkAblationLHSSampling: the aggressive tuner with Latin
// hypercube sampling vs independent uniform sampling, by quality of
// the configuration found in one test run (the §5 LHS design choice).
func BenchmarkAblationLHSSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := env()
		bench := workload.Terasort(100, 752, 200)

		lhsTuner := core.NewTuner(bench.Name, bench.NumMaps, bench.NumReduces, mrconf.Default(),
			core.TunerOptions{Strategy: core.Aggressive, Seed: e.Seed})
		e.RunOne(bench, mrconf.Default(), lhsTuner)
		lhsDur := e.RunOne(bench, lhsTuner.BestConfig(), nil).Duration

		sp := core.DefaultSearchParams()
		sp.PlainRandom = true
		randTuner := core.NewTuner(bench.Name, bench.NumMaps, bench.NumReduces, mrconf.Default(),
			core.TunerOptions{Strategy: core.Aggressive, Seed: e.Seed, Search: sp})
		e.RunOne(bench, mrconf.Default(), randTuner)
		randDur := e.RunOne(bench, randTuner.BestConfig(), nil).Duration

		b.ReportMetric(lhsDur, "lhs_tuned_s")
		b.ReportMetric(randDur, "random_tuned_s")
	}
}

// BenchmarkJobStream: nine mixed jobs arriving over time under fair
// share, with conservative tuning attached to every job.
func BenchmarkJobStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := env().JobStream(9, 30)
		b.ReportMetric(row.MeanDefault, "mean_default_s")
		b.ReportMetric(row.MeanMronline, "mean_mronline_s")
		b.ReportMetric(100*row.Improvement(), "imp_pct")
	}
}

// BenchmarkAblationCostTerms drops each Eq. 1 term in turn and reports
// the quality of the configuration found in one test run — the
// contribution of each cost component (memory, CPU, spills, time).
func BenchmarkAblationCostTerms(b *testing.B) {
	bench := workload.Terasort(100, 752, 200)
	variants := []struct {
		name string
		w    core.CostWeights
	}{
		{"full_s", core.UnitWeights},
		{"no_mem_s", core.CostWeights{0, 1, 1, 1}},
		{"no_cpu_s", core.CostWeights{1, 0, 1, 1}},
		{"no_spill_s", core.CostWeights{1, 1, 0, 1}},
		{"no_time_s", core.CostWeights{1, 1, 1, 0}},
	}
	for i := 0; i < b.N; i++ {
		e := env()
		for _, v := range variants {
			tuner := core.NewTuner(bench.Name, bench.NumMaps, bench.NumReduces, mrconf.Default(),
				core.TunerOptions{Strategy: core.Aggressive, Seed: e.Seed, CostWeights: v.w})
			e.RunOne(bench, mrconf.Default(), tuner)
			dur := e.RunOne(bench, tuner.BestConfig(), nil).Duration
			b.ReportMetric(dur, v.name)
		}
	}
}

// BenchmarkSeedSweep: run-to-run variance of the expedited gain on
// Terasort 60 GB across 5 seeds.
func BenchmarkSeedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := env().SeedSweep(workload.Terasort(60, 0, 0), 5)
		b.ReportMetric(100*st.MeanImp, "mean_imp_pct")
		b.ReportMetric(100*st.MinImp, "min_imp_pct")
		b.ReportMetric(100*st.StdDev, "stddev_pct")
	}
}

// BenchmarkAblationWaveSize varies the global LHS wave size m (the
// paper uses 24) and reports the tuned-run quality: smaller waves
// converge with fewer tasks but sample the space more thinly.
func BenchmarkAblationWaveSize(b *testing.B) {
	bench := workload.Terasort(100, 752, 200)
	for i := 0; i < b.N; i++ {
		e := env()
		for _, m := range []int{12, 24, 48} {
			sp := core.DefaultSearchParams()
			sp.M = m
			sp.N = m * 2 / 3
			tuner := core.NewTuner(bench.Name, bench.NumMaps, bench.NumReduces, mrconf.Default(),
				core.TunerOptions{Strategy: core.Aggressive, Seed: e.Seed, Search: sp})
			e.RunOne(bench, mrconf.Default(), tuner)
			dur := e.RunOne(bench, tuner.BestConfig(), nil).Duration
			b.ReportMetric(dur, fmt.Sprintf("m%d_s", m))
		}
	}
}

// BenchmarkStreamDay is the fleet-scale serving acceptance benchmark:
// one simulated day of mixed-class jobs (Poisson arrivals at 875/hour
// mean with a ±50% diurnal swing — about 21k jobs) against a shared
// 10,016-node cluster under fair scheduling, traced into the
// flat-memory aggregating stats sink. One iteration = the whole day,
// so the -benchmem figures are day totals: on the optimized serving
// path (object pools, precompiled configs, flow/block recycling,
// streaming sinks) allocations stay flat per job rather than growing
// per event, and the day completes in single-digit wall seconds.
func BenchmarkStreamDay(b *testing.B) {
	benchmarkStreamDay(b, false)
}

// BenchmarkStreamDayLegacy is the A/B "before" leg: the identical day
// — byte-identical traces and aggregates, asserted by
// TestStreamLegacyLegIdentical — with every steady-state optimization
// disabled (no pooling, no precompiled snapshots, no input release,
// and a grow-forever trace.Recorder retaining all events), restoring
// the pre-serving-path per-job costs.
func BenchmarkStreamDayLegacy(b *testing.B) {
	benchmarkStreamDay(b, true)
}

// BenchmarkStreamDayParallel is the same simulated day on the
// rack-cell architecture with 8 parallel-window workers: each rack is
// a self-contained cell (scoped RM, single-rack namenode, rack-local
// fabric, private sink) and workers drain rack windows concurrently.
// Aggregates are identical at any worker count (pinned by
// TestStreamWindowInvariance); only the wall clock changes.
func BenchmarkStreamDayParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := experiments.DefaultStreamSpec(7)
		spec.Parallel = 8
		start := time.Now()
		res := experiments.RunStream(spec)
		wall := time.Since(start).Seconds()
		if res.Completed != res.Jobs || res.Jobs < 20000 {
			b.Fatalf("stream day: %d submitted, %d completed (want >=20000, equal)", res.Jobs, res.Completed)
		}
		if res.SinkEvents != res.Stats.EventCount() {
			b.Fatalf("sink ingested %d events, result says %d", res.Stats.EventCount(), res.SinkEvents)
		}
		b.ReportMetric(float64(res.Jobs), "jobs")
		b.ReportMetric(float64(res.Jobs)/wall, "jobs/sec")
		b.ReportMetric(float64(res.Events)/float64(res.Jobs), "events/job")
	}
}

// BenchmarkTunerBackends races the optimizer backends through one
// aggressive expedited test run each on a full-size Table 3 app, then
// re-runs the recommendation standalone. The metrics mirror the
// tournament's clean leg: search evaluations and waves spent, the
// test-run overhead, and the tuned job time it bought.
func BenchmarkTunerBackends(b *testing.B) {
	app, err := workload.ByName("wordcount/Wikipedia")
	if err != nil {
		b.Fatal(err)
	}
	for _, backend := range tuner.Backends() {
		b.Run(backend, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := experiments.Env{Seed: 42, Backend: backend}
				tn, test := e.AggressiveTestRun(app)
				tuned := e.RunOne(app, tn.BestConfig(), nil)
				mt, rt := tn.Trajectories()
				mw, rw := tn.TestWaves()
				b.ReportMetric(test.Duration, "test_run_s")
				b.ReportMetric(tuned.Duration, "tuned_s")
				b.ReportMetric(float64(len(mt)+len(rt)), "evals")
				b.ReportMetric(float64(mw+rw), "waves")
			}
		})
	}
}

func benchmarkStreamDay(b *testing.B, legacy bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := experiments.DefaultStreamSpec(7)
		spec.Legacy = legacy
		start := time.Now()
		res := experiments.RunStream(spec)
		wall := time.Since(start).Seconds()
		if res.Completed != res.Jobs || res.Jobs < 20000 {
			b.Fatalf("stream day: %d submitted, %d completed (want >=20000, equal)", res.Jobs, res.Completed)
		}
		if res.SinkEvents != res.Stats.EventCount() {
			b.Fatalf("sink ingested %d events, result says %d", res.Stats.EventCount(), res.SinkEvents)
		}
		b.ReportMetric(float64(res.Jobs), "jobs")
		b.ReportMetric(float64(res.Jobs)/wall, "jobs/sec")
		b.ReportMetric(float64(res.Events)/float64(res.Jobs), "events/job")
		b.ReportMetric(float64(res.RetainedEvents), "retained_events")
	}
}
