// Hot spots and stragglers: three nodes develop severe background
// interference mid-job (a co-located service hogging disk and CPU).
// This example compares four responses — doing nothing, speculative
// execution, MRONLINE's utilization-aware placement, and both — and
// prints a per-node occupancy Gantt so the straggling nodes are
// visible.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/yarn"
)

func main() {
	env := experiments.Env{Seed: 42}
	fmt.Println("Terasort 20GB; 3 nodes develop severe interference at t=3s")
	fmt.Println()

	st := env.StragglerStudy(3)
	fmt.Printf("%-28s %8s\n", "mitigation", "job time")
	fmt.Printf("%-28s %7.0fs\n", "none", st.NoneDur)
	fmt.Printf("%-28s %7.0fs  (%d copies launched, %d won)\n", "speculative execution", st.SpeculationDur, st.SpecLaunches, st.SpecWins)
	fmt.Printf("%-28s %7.0fs\n", "hot-spot avoidance", st.AvoidanceDur)
	fmt.Printf("%-28s %7.0fs\n", "both", st.BothDur)

	// Re-run the "both" configuration with a trace to visualize it.
	b := workload.Terasort(20, 0, 0)
	rig := env.NewRig(yarn.FIFOScheduler{})
	rig.Eng.At(3, func() {
		for i := 0; i < 3; i++ {
			n := rig.C.Nodes[i]
			for k := 0; k < 30; k++ {
				n.InjectDiskLoad(30, 3600, nil)
				n.InjectCPULoad(1, 3600, nil)
			}
		}
	})
	core.EnableHotSpotAvoidance(rig.RM)
	rig.RM.HotSpotFallbackDelay = 600
	rig.FS.HotThreshold = 0.85
	rec := &trace.Recorder{}
	mapreduce.Submit(rig.RM, rig.FS, mapreduce.Spec{
		Benchmark:   b,
		BaseConfig:  mrconf.Default(),
		Speculation: mapreduce.DefaultSpeculation(),
		Trace:       rec,
	}, func(mapreduce.Result) {})
	rig.Eng.Run()

	fmt.Println("\nper-node occupancy with both mitigations (nodes 00-02 are hot):")
	fmt.Print(rec.Gantt(90))
}
