// Expedited test runs (use case 1, paper §2.3): tune an application
// that will run many times. MRONLINE's aggressive gray-box hill
// climbing tries dozens of configurations inside ONE test run — where
// classic offline tuning needs 20-40 runs — then the best
// configuration is stored in a knowledge base and reused for
// production runs of wordcount over the Wikipedia corpus.
//
//	go run ./examples/expedited
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mrconf"
	"repro/internal/workload"
)

func main() {
	env := experiments.Env{Seed: 42}
	b, err := workload.ByName("wordcount/Wikipedia")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wordcount over Wikipedia (%.1f GB, %d maps, %d reduces)\n\n",
		b.InputSizeMB/1024, b.NumMaps, b.NumReduces)

	// Baseline: how long production runs take with the defaults.
	def := env.RunOne(b, mrconf.Default(), nil)
	fmt.Printf("1. production run, default config:   %5.0f s\n", def.Duration)

	// One aggressive test run. It is slower than a normal run (waves
	// are held while each batch of sampled configurations is measured)
	// but it replaces dozens of trial runs.
	tuner, test := env.AggressiveTestRun(b)
	fmt.Printf("2. MRONLINE aggressive test run:      %5.0f s (tries %s waves of LHS samples)\n",
		test.Duration, "m=24 global / n=16 local")

	// Store the result in the knowledge base, keyed by app, input
	// scale, and cluster.
	kb := core.NewKnowledgeBase()
	key := core.Key(b.Name, b.InputSizeMB, "paper-19node")
	kb.Put(key, tuner.BestConfig())
	path := filepath.Join(os.TempDir(), "mronline-kb.json")
	if err := kb.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. best config stored in %s\n", path)

	// Production runs from now on load the tuned configuration.
	kb2, err := core.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	cfg, _ := kb2.Get(key)
	tuned := env.RunOne(b, cfg, nil)
	fmt.Printf("4. production run, tuned config:      %5.0f s  (%.0f%% faster)\n\n",
		tuned.Duration, 100*(def.Duration-tuned.Duration)/def.Duration)

	fmt.Printf("spilled records: %.2e -> %.2e (optimal %.2e)\n",
		def.Counters.SpilledRecords(), tuned.Counters.SpilledRecords(),
		tuned.Counters.CombineOutputRecs)
	fmt.Println("\ntuned configuration:")
	cfg.EachOverride(func(p mrconf.Param, v float64) {
		fmt.Printf("  %-52s %g\n", p.Name, v)
	})
}
