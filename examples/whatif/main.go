// What-if analysis for category-1 parameters: the number of reducers
// and the reduce slowstart fraction cannot change once a job starts
// (paper §2.2), so MRONLINE cannot tune them online. The paper defers
// them to simulation — this example is that path: observe one run,
// calibrate the simulator's workload profile to the measured data
// volumes, then sweep candidate settings offline and pick the best.
//
//	go run ./examples/whatif
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/mrconf"
	"repro/internal/whatif"
	"repro/internal/workload"
)

func main() {
	env := experiments.Env{Seed: 42}
	b := workload.Terasort(60, 0, 0) // paper defaults: 448 maps, 112 reduces

	fmt.Printf("observed run: Terasort 60GB with %d reducers, slowstart 0.05\n", b.NumReduces)
	observed := env.RunOne(b, mrconf.Default(), nil)
	fmt.Printf("  took %.0f s\n\n", observed.Duration)

	// Calibrate the profile to what the run actually measured, then
	// ask the simulator what other settings would have done.
	calibrated := whatif.CalibrateFromRun(b, observed)
	preds := whatif.Explore(whatif.Question{
		Benchmark:    calibrated,
		Config:       mrconf.Default(),
		ReduceCounts: []int{28, 56, 112, 224, 448},
		Slowstarts:   []float64{0.05, 0.5, 0.9},
		Seed:         42,
	})

	fmt.Println("what-if sweep (fastest first):")
	for i, p := range preds {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Printf(" %s reduces=%4d slowstart=%.2f predicted=%5.0fs\n",
			marker, p.NumReduces, p.Slowstart, p.PredictedSecs)
	}

	best := preds[0]
	fmt.Printf("\nrecommendation: %d reducers, slowstart %.2f (%.0f%% vs observed settings)\n",
		best.NumReduces, best.Slowstart,
		100*(observed.Duration-best.PredictedSecs)/observed.Duration)
}
