// Quickstart: simulate one MapReduce job on the paper's 19-node
// cluster, first under the default YARN configuration and then with
// MRONLINE's conservative online tuning attached — the minimal "just
// co-execute MRONLINE with your application" workflow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// runJob builds a fresh simulated cluster and executes one job on it.
func runJob(b workload.Benchmark, ctrl mapreduce.Controller) mapreduce.Result {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
	fs := hdfs.New(c, sim.NewSource(42).Stream("hdfs"))

	var res mapreduce.Result
	mapreduce.Submit(rm, fs, mapreduce.Spec{
		Benchmark:  b,
		BaseConfig: mrconf.Default(),
		Controller: ctrl,
	}, func(r mapreduce.Result) { res = r })
	eng.Run() // drive the discrete-event simulation to completion
	return res
}

func main() {
	b := workload.Terasort(20, 0, 0) // 20 GB synthetic sort

	fmt.Printf("Terasort %d maps / %d reduces on 18 worker nodes\n\n", b.NumMaps, b.NumReduces)

	def := runJob(b, nil)
	fmt.Printf("default configuration:  %6.0f s, %.2e spilled records\n",
		def.Duration, def.Counters.SpilledRecords())

	tuner := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		core.TunerOptions{Strategy: core.Conservative, Seed: 42})
	tuned := runJob(b, tuner)
	fmt.Printf("MRONLINE conservative:  %6.0f s, %.2e spilled records\n",
		tuned.Duration, tuned.Counters.SpilledRecords())

	fmt.Printf("\nimprovement: %.0f%% — with zero test runs and no user effort\n",
		100*(def.Duration-tuned.Duration)/def.Duration)
	fmt.Println("\nconfiguration MRONLINE converged to:")
	fmt.Println(" ", tuner.BestConfig())
}
