// Fast single run (use case 2, paper §2.3): a job that runs once and
// is not worth a tuning campaign. MRONLINE's conservative strategy
// watches the first wave of tasks, then adjusts buffers, container
// sizes, and CPU allocation for every task launched afterwards —
// without ever interfering with scheduling.
//
// This example traces how the configuration evolves mid-job for the
// shuffle-heavy bigram benchmark on the Freebase corpus.
//
//	go run ./examples/singlerun
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/workload"
)

// tracer wraps the tuner to print the per-task configuration the
// dynamic configurator hands out as the job progresses.
type tracer struct {
	*core.Tuner
	lastMap mrconf.Config
	printed int
}

func (tr *tracer) TaskConfig(t *mapreduce.Task, base mrconf.Config) mrconf.Config {
	cfg := tr.Tuner.TaskConfig(t, base)
	if t.Type == mapreduce.MapTask && !cfg.Equal(tr.lastMap) && tr.printed < 6 {
		tr.lastMap = cfg
		tr.printed++
		fmt.Printf("  map %4d launches with: %s\n", t.ID, cfg)
	}
	return cfg
}

func main() {
	env := experiments.Env{Seed: 42}
	b, err := workload.ByName("bigram/Freebase")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bigram over Freebase (%.1f GB input, %.1f GB shuffled)\n\n",
		b.InputSizeMB/1024, b.ShuffleSizeMB/1024)

	def := env.RunOne(b, mrconf.Default(), nil)
	fmt.Printf("default configuration: %.0f s\n\n", def.Duration)

	fmt.Println("conservative tuning, configuration evolution:")
	tuner := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		core.TunerOptions{Strategy: core.Conservative, Seed: 42})
	res := env.RunOne(b, mrconf.Default(), &tracer{Tuner: tuner, lastMap: mrconf.Default()})

	fmt.Printf("\nMRONLINE single run:   %.0f s (%.0f%% faster, no test runs)\n",
		res.Duration, 100*(def.Duration-res.Duration)/def.Duration)
	fmt.Printf("spilled records:       %.2e -> %.2e\n",
		def.Counters.SpilledRecords(), res.Counters.SpilledRecords())
	fmt.Printf("map memory util:       %.0f%% -> %.0f%%\n",
		def.MapMemUtil*100, res.MapMemUtil*100)
}
