// Multi-tenant tuning (paper §8.5): Terasort (I/O heavy) and BBP
// (compute bound) share the cluster under YARN fair scheduling.
// MRONLINE tunes each application separately — shrinking Terasort's
// oversized containers, giving BBP's CPU-starved mappers more vcores —
// which raises cluster utilization and speeds up both jobs.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	env := experiments.Env{Seed: 42}
	fmt.Println("co-running Terasort 60GB (448 maps / 200 reduces) + BBP (100 maps / 1 reduce)")
	fmt.Println("fair-share scheduling on the 18-worker cluster")
	fmt.Println()

	mt := env.MultiTenant()

	fmt.Printf("%-10s %12s %12s %12s\n", "app", "default", "MRONLINE", "improvement")
	tsImp := 100 * (mt.Default.Terasort.Duration - mt.Mronline.Terasort.Duration) / mt.Default.Terasort.Duration
	bbpImp := 100 * (mt.Default.BBP.Duration - mt.Mronline.BBP.Duration) / mt.Default.BBP.Duration
	fmt.Printf("%-10s %11.0fs %11.0fs %11.0f%%\n", "Terasort", mt.Default.Terasort.Duration, mt.Mronline.Terasort.Duration, tsImp)
	fmt.Printf("%-10s %11.0fs %11.0fs %11.0f%%\n", "BBP", mt.Default.BBP.Duration, mt.Mronline.BBP.Duration, bbpImp)

	fmt.Println("\nmemory utilization (paper Fig 15):")
	fmt.Printf("  Terasort maps    %4.0f%% -> %4.0f%%\n", 100*mt.Default.Terasort.MapMemUtil, 100*mt.Mronline.Terasort.MapMemUtil)
	fmt.Printf("  Terasort reduces %4.0f%% -> %4.0f%%\n", 100*mt.Default.Terasort.ReduceMemUtil, 100*mt.Mronline.Terasort.ReduceMemUtil)
	fmt.Printf("  BBP maps         %4.0f%% -> %4.0f%%\n", 100*mt.Default.BBP.MapMemUtil, 100*mt.Mronline.BBP.MapMemUtil)

	fmt.Println("\nCPU utilization (paper Fig 16):")
	fmt.Printf("  BBP maps run at %.0f%% of their vcore allowance under the default\n", 100*mt.Default.BBP.MapCPUUtil)
	fmt.Println("  -> MRONLINE identifies the over-utilization and assigns them more vcores")

	fmt.Printf("\nTerasort spilled records: %.2e -> %.2e (paper: 1.8e9 -> 0.6e9)\n",
		mt.Default.Terasort.Counters.SpilledRecords(),
		mt.Mronline.Terasort.Counters.SpilledRecords())
}
